package network

import (
	"fmt"
	"hash/fnv"
	"math/rand"
	"testing"

	"lapses/internal/fault"
	"lapses/internal/flow"
	"lapses/internal/router"
	"lapses/internal/routing"
	"lapses/internal/selection"
	"lapses/internal/table"
	"lapses/internal/topology"
	"lapses/internal/traffic"
)

// scheduleConfig assembles a network under a transient-fault schedule:
// one fault-aware routing table set per epoch, every link physically
// wired, liveness enforced dynamically (dead-port gating + transition
// purges).
func scheduleConfig(t *testing.T, m *topology.Mesh, sched *fault.Schedule, la bool, rate float64, seed int64) Config {
	t.Helper()
	cls := routing.Class{NumVCs: 4, EscapeVCs: 1}
	epochTables, err := BuildEpochTables(m, table.KindES, cls, sched, func(plan *fault.Plan) (routing.Algorithm, error) {
		return routing.NewFaultDuato(m, cls, plan)
	})
	if err != nil {
		t.Fatal(err)
	}
	alg, err := routing.NewFaultDuato(m, cls, sched.Plan(0))
	if err != nil {
		t.Fatal(err)
	}
	return Config{
		Mesh:        m,
		Router:      router.Config{NumVCs: 4, BufDepth: 20, OutDepth: 4, LookAhead: la},
		LinkDelay:   1,
		Algorithm:   alg,
		Class:       cls,
		Table:       table.KindES,
		Schedule:    sched,
		EpochTables: epochTables,
		Selection:   selection.LRU,
		Pattern:     traffic.New(traffic.Uniform, m),
		MsgRate:     rate,
		MsgLen:      20,
		Seed:        seed,
	}
}

// scheduleFingerprint executes a full measured run and folds every observable
// outcome — each delivery's (ID, create, inject, arrive, hops), each
// permanent loss, and the network's terminal counters — into one hash.
// Two runs with equal fingerprints made bit-identical decisions.
func scheduleFingerprint(t *testing.T, cfg Config, warmup, measure int) (string, *Network) {
	t.Helper()
	n := New(cfg)
	h := fnv.New64a()
	n.onArrive = func(msg *flow.Message, now int64) {
		fmt.Fprintf(h, "a %d %d %d %d %d\n", msg.ID, msg.CreateTime, msg.InjectTime, msg.ArriveTime, msg.Hops)
	}
	n.onLost = func(id flow.MessageID) {
		fmt.Fprintf(h, "l %d\n", id)
	}
	run := n.Run(RunParams{WarmupMessages: warmup, MeasureMessages: measure})
	n.onArrive, n.onLost = nil, nil
	if run.Saturated {
		t.Fatalf("scheduled-fault run saturated: %s", run.SatReason)
	}
	fmt.Fprintf(h, "t %d %d %d %d %d %d %d\n", n.Now(), n.Delivered(), n.DroppedFlits(), n.DroppedMessages(),
		n.ReconvergenceEpochs(), n.Retransmits(), n.Abandoned())
	return fmt.Sprintf("%x", h.Sum64()), n
}

// TestScheduleShardEquivalence pins the tentpole determinism claim on
// both execution kernels, each to the guarantee that kernel makes without
// a schedule (network.Config.EventMode documents the difference):
//
//   - cycle kernel: bit-identical results at shard counts {1, 2, 4} — a
//     full healthy -> faulted -> healed schedule must not weaken the
//     shard-equivalence argument. Transitions run in Step's preamble on
//     the stepping goroutine, so the victim purge, table swap, and credit
//     recomputation must be invariant to how the mesh is banded; this
//     test fails if any of them ever reads mid-cycle shard state.
//   - event kernel: deterministic for a fixed configuration and shard
//     count — reruns at each shard count in {1, 2, 4} are bit-identical,
//     and every shard count sees the transitions and destroys flits.
//     (Event mode was never cross-shard bit-identical, healthy or not:
//     express admission consults arbiter state at arrival time, and
//     wheel-slot order differs across bandings.)
func TestScheduleShardEquivalence(t *testing.T) {
	t.Parallel()
	m := topology.NewMesh(8, 8)
	// Two links and a router fail after warm traffic is flowing and heal
	// while the run is still measuring: every transition kind (down with
	// in-flight victims, up with reconvergence onto restored paths) lands
	// inside the measured window.
	sched, err := fault.ParseSchedule(m, "27-28@1500:6000,r9@2000:7000,44-45@2500")
	if err != nil {
		t.Fatal(err)
	}
	for _, la := range []bool{false, true} {
		for _, events := range []bool{false, true} {
			la, events := la, events
			t.Run(fmt.Sprintf("la=%t/events=%t", la, events), func(t *testing.T) {
				t.Parallel()
				var want string
				for _, shards := range []int{1, 2, 4} {
					run := func() (string, *Network) {
						cfg := scheduleConfig(t, m, sched, la, 0.004, 7)
						cfg.Shards = shards
						cfg.EventMode = events
						return scheduleFingerprint(t, cfg, 100, 2200)
					}
					got, n := run()
					if n.ReconvergenceEpochs() == 0 {
						t.Fatal("run ended before any fault transition fired")
					}
					if n.DroppedFlits() == 0 {
						t.Fatalf("shards=%d: no in-flight flits were destroyed by the transitions; the purge path was not exercised", shards)
					}
					if events {
						if again, _ := run(); again != got {
							t.Errorf("shards=%d: event-kernel rerun fingerprint %s != %s", shards, again, got)
						}
						continue
					}
					if shards == 1 {
						want = got
						continue
					}
					if got != want {
						t.Errorf("shards=%d fingerprint %s != serial %s", shards, got, want)
					}
				}
			})
		}
	}
}

// scheduleTrace builds a finite workload whose injections bracket the
// schedule's fault window, so some messages are mid-flight at every
// transition.
func scheduleTrace(t *testing.T, m *topology.Mesh, nMsgs int, horizon int64, seed int64) *traffic.Trace {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	msgs := make([]traffic.TraceMsg, 0, nMsgs)
	for i := 0; i < nMsgs; i++ {
		src := topology.NodeID(rng.Intn(m.N()))
		dst := topology.NodeID(rng.Intn(m.N()))
		if src == dst {
			continue
		}
		msgs = append(msgs, traffic.TraceMsg{
			At:     int64(rng.Int63n(horizon)),
			Src:    src,
			Dst:    dst,
			Length: 1 + rng.Intn(20),
		})
	}
	trace, err := traffic.NewTrace(msgs)
	if err != nil {
		t.Fatal(err)
	}
	return trace
}

// relBusyScan reports whether any NI's reliability layer still holds
// unacknowledged sends or undelivered pure acks — work that keeps the
// network from being truly quiescent even with the fabric empty.
func (n *Network) relBusyScan() bool {
	if n.rel == nil {
		return false
	}
	for _, x := range n.nis {
		if x.rel == nil {
			continue
		}
		if len(x.rel.pend) > 0 {
			return true
		}
		// ackPeers may hold stale entries whose ack already piggybacked
		// out; only a still-pending ack is outstanding work.
		for _, src := range x.rel.ackPeers {
			if x.rel.recv[src].ackPending {
				return true
			}
		}
	}
	return false
}

// drainQuiet steps the network past Run's stopping point (the last
// measured completion) until nothing remains anywhere: Run returns the
// moment accounting completes, which with the reliability layer on can
// leave retransmitted copies and pure acks mid-fabric and retransmission
// timers armed.
func drainQuiet(t *testing.T, n *Network, bound int) {
	t.Helper()
	for i := 0; i < bound; i++ {
		if n.Occupancy() == 0 && n.QueuedMessages() == 0 && !n.relBusyScan() {
			return
		}
		n.Step()
	}
	t.Fatalf("network not quiescent after %d extra cycles (occupancy=%d queued=%d relBusy=%t)",
		bound, n.Occupancy(), n.QueuedMessages(), n.relBusyScan())
}

// TestScheduleReliabilityExactlyOnce: with the end-to-end reliability
// layer on, a finite workload crossing a link fault-and-repair storm
// drains with every message delivered exactly once — losses recovered by
// retransmission, duplicates suppressed at the receiver, nothing
// abandoned.
func TestScheduleReliabilityExactlyOnce(t *testing.T) {
	t.Parallel()
	m := topology.NewMesh(6, 6)
	// Central links go down mid-run and heal; trace injections continue
	// through the outage so flits die on the wire and in buffers.
	sched, err := fault.ParseSchedule(m, "14-15@600:3000,20-21@700:3500,15-21@800:2800,15-16@900:3200,21-22@1000:3400")
	if err != nil {
		t.Fatal(err)
	}
	for _, events := range []bool{false, true} {
		events := events
		t.Run(fmt.Sprintf("events=%t", events), func(t *testing.T) {
			t.Parallel()
			trace := scheduleTrace(t, m, 400, 2500, 11)
			cfg := scheduleConfig(t, m, sched, true, 0, 11)
			cfg.Pattern = nil
			cfg.MsgRate = 0
			cfg.Trace = trace
			cfg.Shards = 2
			cfg.EventMode = events
			cfg.Reliability = &Reliability{RTO: 512, MaxAttempts: 30, AckDelay: 32}
			if err := cfg.Validate(); err != nil {
				t.Fatal(err)
			}
			n := New(cfg)
			total := trace.Total()
			delivered := make(map[flow.MessageID]bool, total)
			n.onArrive = func(msg *flow.Message, now int64) {
				if msg.ID < 0 {
					t.Fatalf("control message %d reached the arrival observer", msg.ID)
				}
				if delivered[msg.ID] {
					t.Fatalf("message %d delivered twice", msg.ID)
				}
				delivered[msg.ID] = true
			}
			run := n.Run(RunParams{MeasureMessages: total})
			n.onArrive = nil
			if run.Saturated {
				t.Fatalf("reliable run did not drain: %s", run.SatReason)
			}
			if len(delivered) != total {
				t.Fatalf("delivered %d of %d messages", len(delivered), total)
			}
			if got := n.Abandoned(); got != 0 {
				t.Fatalf("%d messages abandoned despite generous retry budget", got)
			}
			if n.DroppedFlits() == 0 {
				t.Fatal("storm destroyed no flits; the recovery path was not exercised")
			}
			if n.Retransmits() == 0 {
				t.Fatal("no retransmissions despite destroyed flits")
			}
			drainQuiet(t, n, 500000)
			if n.Occupancy() != 0 || n.QueuedMessages() != 0 {
				t.Fatalf("drained network still holds %d flits / %d messages", n.Occupancy(), n.QueuedMessages())
			}
		})
	}
}

// TestScheduleConservationWithoutReliability: with the layer off, the
// fault schedule's losses are exact — every trace message is either
// delivered once or reported lost exactly once, with no overlap and no
// leftovers in the fabric.
func TestScheduleConservationWithoutReliability(t *testing.T) {
	t.Parallel()
	m := topology.NewMesh(6, 6)
	sched, err := fault.ParseSchedule(m, "14-15@600:3000,20-21@700:3500,15-21@800:2800,15-16@900:3200,21-22@1000:3400")
	if err != nil {
		t.Fatal(err)
	}
	trace := scheduleTrace(t, m, 400, 2500, 11)
	cfg := scheduleConfig(t, m, sched, true, 0, 11)
	cfg.Pattern = nil
	cfg.MsgRate = 0
	cfg.Trace = trace
	cfg.Shards = 2
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	n := New(cfg)
	total := trace.Total()
	delivered := make(map[flow.MessageID]bool, total)
	lost := make(map[flow.MessageID]bool)
	n.onArrive = func(msg *flow.Message, now int64) {
		if delivered[msg.ID] || lost[msg.ID] {
			t.Fatalf("message %d delivered after being counted (dup=%t lost=%t)", msg.ID, delivered[msg.ID], lost[msg.ID])
		}
		delivered[msg.ID] = true
	}
	n.onLost = func(id flow.MessageID) {
		if delivered[id] || lost[id] {
			t.Fatalf("message %d lost after being counted (dup=%t delivered=%t)", id, lost[id], delivered[id])
		}
		lost[id] = true
	}
	run := n.Run(RunParams{MeasureMessages: total})
	n.onArrive, n.onLost = nil, nil
	if run.Saturated {
		t.Fatalf("run did not drain: %s", run.SatReason)
	}
	if len(delivered)+len(lost) != total {
		t.Fatalf("delivered %d + lost %d != injected %d", len(delivered), len(lost), total)
	}
	if len(lost) == 0 {
		t.Fatal("storm lost no messages; the drop accounting was not exercised")
	}
	if int64(len(lost)) != n.DroppedMessages() {
		t.Fatalf("observer saw %d losses, DroppedMessages reports %d", len(lost), n.DroppedMessages())
	}
	if n.Occupancy() != 0 || n.QueuedMessages() != 0 {
		t.Fatalf("drained network still holds %d flits / %d messages", n.Occupancy(), n.QueuedMessages())
	}
}

// TestScheduleCountersStayCoherent steps a scheduled-fault network
// cycle by cycle across its transitions and checks the incremental
// occupancy/queue counters against full scans — the purge adjusts both,
// and any slip would surface here at the exact transition cycle.
func TestScheduleCountersStayCoherent(t *testing.T) {
	t.Parallel()
	m := topology.NewMesh(6, 6)
	sched, err := fault.ParseSchedule(m, "14-15@500:2000,r22@900:2600")
	if err != nil {
		t.Fatal(err)
	}
	cfg := scheduleConfig(t, m, sched, true, 0.005, 5)
	n := New(cfg)
	for i := 0; i < 4000; i++ {
		n.Step()
		if got, want := n.Occupancy(), n.scanOccupancy(); got != want {
			t.Fatalf("cycle %d: Occupancy counter %d, scan %d", i, got, want)
		}
		if got, want := n.QueuedMessages(), n.scanQueued(); got != want {
			t.Fatalf("cycle %d: QueuedMessages counter %d, scan %d", i, got, want)
		}
	}
	if n.ReconvergenceEpochs() != 4 {
		t.Fatalf("expected 4 transitions, saw %d", n.ReconvergenceEpochs())
	}
	if n.Delivered() == 0 {
		t.Fatal("no messages delivered in 4000 cycles")
	}
}
