package network

import (
	"math/rand"
	"testing"

	"lapses/internal/fault"
	"lapses/internal/flow"
	"lapses/internal/router"
	"lapses/internal/routing"
	"lapses/internal/selection"
	"lapses/internal/table"
	"lapses/internal/topology"
	"lapses/internal/traffic"
)

// FuzzFaultSchedule drives random transient-fault schedules — links failing
// and healing mid-run — through finite trace workloads and checks the
// accounting identities no timed damage may violate:
//
//   - reliability layer on: exactly-once delivery. Every traced message
//     reaches its destination exactly once, nothing is abandoned (every
//     epoch is connected, so retransmission always eventually succeeds),
//     and no control message leaks to the arrival observer.
//   - reliability layer off: conservation of messages. Injected equals
//     delivered plus dropped, disjointly — each ID appears in exactly one
//     of the two sets, and the loss count matches DroppedMessages.
//   - always: the drained network holds nothing (occupancy and queue
//     scans agree with their counters at zero).
//
// Schedules are link-only: a trace pins its endpoints at build time, and
// the network (correctly) refuses workloads whose sources could be dead
// when their injections fire. Router events are covered by the directed
// schedule tests. The shard count, both execution kernels, and a
// deliberately aggressive RTO (forcing retransmissions of healthy traffic,
// hence duplicate suppression) are fuzzed alongside the schedule.
//
// Run continuously with: go test -run '^$' -fuzz FuzzFaultSchedule ./internal/network
func FuzzFaultSchedule(f *testing.F) {
	f.Add(int64(1), uint8(3), true, uint8(1), false, false)
	f.Add(int64(2), uint8(5), false, uint8(2), true, true)
	f.Add(int64(3), uint8(2), true, uint8(4), false, true)
	f.Add(int64(4), uint8(7), false, uint8(3), true, false)
	f.Fuzz(func(t *testing.T, seed int64, nLinks uint8, la bool, shards uint8, events, rel bool) {
		m := topology.NewMesh(6, 6)
		sched, err := fault.RandomSchedule(m, 1+int(nLinks%8), 0, 4000, seed)
		if err != nil {
			t.Skip("no connected schedule for this draw")
		}
		cls := routing.Class{NumVCs: 4, EscapeVCs: 1}
		epochTables, err := BuildEpochTables(m, table.KindES, cls, sched, func(plan *fault.Plan) (routing.Algorithm, error) {
			return routing.NewFaultDuato(m, cls, plan)
		})
		if err != nil {
			t.Skip("an epoch defeats fault-aware routing")
		}
		alg, err := routing.NewFaultDuato(m, cls, sched.Plan(0))
		if err != nil {
			t.Skip("initial epoch defeats fault-aware routing")
		}

		rng := rand.New(rand.NewSource(seed ^ 0x5eed))
		nMsgs := 50 + rng.Intn(200)
		msgs := make([]traffic.TraceMsg, 0, nMsgs)
		for i := 0; i < nMsgs; i++ {
			src := topology.NodeID(rng.Intn(m.N()))
			dst := topology.NodeID(rng.Intn(m.N()))
			if src == dst {
				continue
			}
			msgs = append(msgs, traffic.TraceMsg{
				At:     int64(rng.Intn(3500)),
				Src:    src,
				Dst:    dst,
				Length: 1 + rng.Intn(20),
			})
		}
		if len(msgs) == 0 {
			t.Skip("degenerate trace")
		}
		trace, err := traffic.NewTrace(msgs)
		if err != nil {
			t.Fatal(err)
		}
		cfg := Config{
			Mesh:        m,
			Router:      router.Config{NumVCs: 4, BufDepth: 20, OutDepth: 4, LookAhead: la},
			LinkDelay:   1,
			Algorithm:   alg,
			Class:       cls,
			Table:       table.KindES,
			Schedule:    sched,
			EpochTables: epochTables,
			Selection:   selection.LRU,
			Trace:       trace,
			MsgLen:      20,
			Seed:        seed,
			Shards:      1 + int(shards%6),
			EventMode:   events,
		}
		if rel {
			cfg.Reliability = &Reliability{RTO: 256, MaxAttempts: 30, AckDelay: 16}
		}
		if err := cfg.Validate(); err != nil {
			t.Fatal(err)
		}
		n := New(cfg)
		total := trace.Total()
		delivered := make(map[flow.MessageID]bool, total)
		lost := make(map[flow.MessageID]bool)
		n.onArrive = func(msg *flow.Message, now int64) {
			if msg.ID < 0 {
				t.Fatalf("control message %d reached the arrival observer", msg.ID)
			}
			if delivered[msg.ID] {
				t.Fatalf("message %d delivered twice", msg.ID)
			}
			delivered[msg.ID] = true
		}
		n.onLost = func(id flow.MessageID) {
			if lost[id] {
				t.Fatalf("message %d lost twice", id)
			}
			lost[id] = true
		}
		run := n.Run(RunParams{MeasureMessages: total})
		n.onArrive, n.onLost = nil, nil
		if run.Saturated {
			t.Fatalf("finite trace under %s did not drain: %s", sched, run.SatReason)
		}
		if rel {
			if len(lost) != 0 || n.Abandoned() != 0 {
				t.Fatalf("reliability on: %d messages lost, %d abandoned", len(lost), n.Abandoned())
			}
			if len(delivered) != total {
				t.Fatalf("reliability on: delivered %d of %d messages", len(delivered), total)
			}
		} else {
			if len(delivered)+len(lost) != total {
				t.Fatalf("conservation: delivered %d + lost %d != injected %d", len(delivered), len(lost), total)
			}
			for id := range lost {
				if delivered[id] {
					t.Fatalf("message %d both delivered and lost", id)
				}
			}
			if int64(len(lost)) != n.DroppedMessages() {
				t.Fatalf("loss replay count %d != DroppedMessages %d", len(lost), n.DroppedMessages())
			}
		}
		drainQuiet(t, n, 500000)
		if n.Occupancy() != 0 || n.scanOccupancy() != 0 {
			t.Fatalf("drained network still buffers %d flits", n.Occupancy())
		}
		if n.QueuedMessages() != 0 || n.scanQueued() != 0 {
			t.Fatalf("drained network still queues %d messages", n.QueuedMessages())
		}
	})
}
