package network

import (
	"testing"

	"lapses/internal/selection"
	"lapses/internal/table"
	"lapses/internal/topology"
	"lapses/internal/traffic"
)

// scanOccupancy and scanQueued recompute what the incremental counters
// track, for invariant checks.
func (n *Network) scanOccupancy() int {
	total := 0
	for _, r := range n.routers {
		total += r.Occupancy()
	}
	return total
}

func (n *Network) scanQueued() int {
	total := 0
	for _, x := range n.nis {
		total += x.pending()
	}
	return total
}

// routerOnSet and niOnSet report active-set membership through the
// sharded bitmaps, for coverage checks.
func (n *Network) routerOnSet(id int) bool {
	sh := n.shards[n.nodeShard[id]]
	return sh.actRouters.has(id - sh.lo)
}

func (n *Network) niOnSet(id int) bool {
	sh := n.shards[n.nodeShard[id]]
	return sh.actNIs.has(id - sh.lo)
}

// The incrementally maintained Occupancy/QueuedMessages counters must
// track the full scans exactly, cycle by cycle — per shard band as well
// as in aggregate.
func TestIncrementalCountersMatchScans(t *testing.T) {
	for _, shards := range []int{1, 4} {
		m := topology.NewMesh(8, 8)
		cfg := testConfig(m, true, table.KindES, selection.LRU, traffic.New(traffic.Uniform, m), 0.01, 3)
		cfg.Shards = shards
		n := New(cfg)
		for i := 0; i < 5000; i++ {
			n.Step()
			if got, want := n.Occupancy(), n.scanOccupancy(); got != want {
				t.Fatalf("shards=%d cycle %d: Occupancy counter %d, scan %d", shards, i, got, want)
			}
			if got, want := n.QueuedMessages(), n.scanQueued(); got != want {
				t.Fatalf("shards=%d cycle %d: QueuedMessages counter %d, scan %d", shards, i, got, want)
			}
		}
	}
}

// The active sets must cover every component with work: a router off the
// active set has zero occupancy, an NI off the set has nothing pending.
func TestActiveSetCoversAllWork(t *testing.T) {
	m := topology.NewMesh(8, 8)
	cfg := testConfig(m, false, table.KindFull, selection.MinMux, traffic.New(traffic.Transpose, m), 0.02, 5)
	n := New(cfg)
	for i := 0; i < 4000; i++ {
		n.Step()
		for id, r := range n.routers {
			if r.Active() && !n.routerOnSet(id) {
				t.Fatalf("cycle %d: router %d has %d flits but is off the active set", i, id, r.Occupancy())
			}
		}
		for id, x := range n.nis {
			if x.pending() > 0 && !n.niOnSet(id) {
				t.Fatalf("cycle %d: NI %d has %d pending but is off the active set", i, id, x.pending())
			}
		}
	}
}

// At a loaded steady state, Step must not allocate: the wheels, buffers,
// queues, message pools, and cross-shard mailboxes all reach their
// high-water marks during warmup and are reused thereafter. The contract
// holds for the serial kernel, for sharded stepping executed inline, and
// for sharded stepping dispatched to the phase-A workers Run uses (the
// channel handshake and WaitGroup round-trip are allocation-free too).
func TestStepSteadyStateAllocationFree(t *testing.T) {
	cases := []struct {
		name    string
		shards  int
		workers bool
	}{
		{"serial", 1, false},
		{"shards=4/inline", 4, false},
		{"shards=4/workers", 4, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			m := topology.NewMesh(8, 8)
			cfg := testConfig(m, true, table.KindES, selection.LRU, traffic.New(traffic.Uniform, m), 0.02, 11)
			cfg.Shards = tc.shards
			n := New(cfg)
			n.recycle = true // Run enables this; drive Step directly here
			if tc.workers {
				stop := n.startWorkers()
				defer stop()
			}
			for i := 0; i < 20000; i++ {
				n.Step()
			}
			avg := testing.AllocsPerRun(2000, func() { n.Step() })
			// A strict zero would be flaky (a rare source-queue or heap
			// growth past the prior high-water mark is legitimate); ~zero
			// is the contract.
			if avg > 0.01 {
				t.Fatalf("steady-state Step allocates %v allocs/op, want ~0", avg)
			}
		})
	}
}
