// Stencil runs an application-style workload — the bulk-synchronous
// halo exchange of an iterative PDE solver — through the LAPSES router,
// comparing the PROUD and LA-PROUD pipelines. Every iteration each node
// exchanges one message with each mesh neighbor; messages are short, so
// per-hop header latency (exactly what look-ahead removes) dominates.
// The paper's conclusion lists application workloads as the natural next
// evaluation; this example shows the trace-driven facility that supports
// them.
package main

import (
	"fmt"
	"log"

	"lapses/internal/core"
	"lapses/internal/traffic"
)

func main() {
	const (
		iterations = 40
		period     = 120 // cycles between iterations
		msgLen     = 8   // flits per halo message
	)
	fmt.Printf("Stencil halo exchange on 16x16 mesh: %d iterations, %d-flit messages every %d cycles\n\n",
		iterations, msgLen, period)

	for _, la := range []bool{false, true} {
		cfg := core.DefaultConfig()
		cfg.LookAhead = la
		mesh := cfg.Mesh()
		tr := traffic.StencilTrace(mesh, iterations, period, msgLen)
		cfg.Trace = tr
		warm := tr.Total() / 10
		cfg.Warmup, cfg.Measure = warm, tr.Total()-warm

		res, err := core.Run(cfg)
		if err != nil {
			log.Fatal(err)
		}
		name := "PROUD (5-stage)"
		if la {
			name = "LA-PROUD (4-stage)"
		}
		fmt.Printf("%-20s avg halo latency %6.1f cycles  (all 1-hop: %.0f hop avg)\n",
			name, res.AvgLatency, res.AvgHops)
	}
	fmt.Println("\nShort nearest-neighbor messages see the full benefit of the saved pipeline stage.")
}
