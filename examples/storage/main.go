// Storage contrasts the routing-table organizations of section 5: it
// prints the storage cost of each scheme on the 16x16 mesh, shows the
// 9-entry economical-storage programming of one router, and then measures
// that ES delivers exactly full-table performance while the meta-table
// mappings fall behind (bit-reversal traffic, the paper's Table 4).
package main

import (
	"fmt"
	"log"

	"lapses/internal/core"
	"lapses/internal/routing"
	"lapses/internal/table"
	"lapses/internal/topology"
	"lapses/internal/traffic"
)

func main() {
	m := topology.NewMesh(16, 16)
	cls := routing.Class{NumVCs: 4, EscapeVCs: 1}
	duato := routing.NewDuato(m, cls)
	node := m.ID(topology.Coord{7, 7})

	fmt.Println("Routing-table storage on a 256-node mesh (entries per router):")
	for _, tbl := range []table.Table{
		table.NewFull(m, duato, node),
		table.NewMeta(m, duato, cls, node, table.MapRow),
		table.NewMeta(m, duato, cls, node, table.MapBlock),
		table.NewES(m, duato, node),
	} {
		fmt.Printf("  %-12s %4d entries\n", tbl.Name(), tbl.Entries())
	}

	es := table.NewES(m, duato, node)
	fmt.Printf("\nES programming of router (7,7) for Duato's fully adaptive routing:\n%s\n", es.Dump())

	fmt.Println("Latency under bit-reversal traffic (LA adaptive router):")
	fmt.Printf("%-6s %12s %12s %12s %12s\n", "load", "full", "es", "meta-row", "meta-block")
	for _, load := range []float64{0.1, 0.2, 0.3} {
		fmt.Printf("%-6.1f", load)
		for _, tk := range []table.Kind{table.KindFull, table.KindES, table.KindMetaRow, table.KindMetaBlock} {
			cfg := core.DefaultConfig()
			cfg.Table = tk
			cfg.Pattern = traffic.BitReversal
			cfg.Load = load
			cfg.Warmup, cfg.Measure = 500, 8000
			res, err := core.Run(cfg)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf(" %12s", res.LatencyString())
		}
		fmt.Println()
	}
	fmt.Println("\nfull == es exactly (same routing function, 256 vs 9 entries).")
}
