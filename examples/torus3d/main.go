// Torus3d exercises the economical-storage generalizations the paper
// sketches in section 5.2.1: a 27-entry ES table on a 3-D mesh (the Cray
// T3D's 2048-entry table shrinks to 27) and dateline-based deadlock-free
// adaptive routing on a 2-D torus.
package main

import (
	"fmt"
	"log"

	"lapses/internal/core"
	"lapses/internal/routing"
	"lapses/internal/table"
	"lapses/internal/topology"
	"lapses/internal/traffic"
)

func main() {
	// A 512-node 3-D mesh routed with 27-entry tables.
	m3 := topology.NewMesh(8, 8, 8)
	cls := routing.Class{NumVCs: 4, EscapeVCs: 1}
	es := table.NewES(m3, routing.NewDuato(m3, cls), m3.ID(topology.Coord{4, 4, 4}))
	fmt.Printf("3-D mesh %s: full table would need %d entries per router; ES needs %d\n",
		m3, m3.N(), es.Entries())

	cfg := core.DefaultConfig()
	cfg.Dims = []int{8, 8, 8}
	cfg.Pattern = traffic.Uniform
	cfg.Load = 0.3
	cfg.Warmup, cfg.Measure = 500, 6000
	res, err := core.Run(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  uniform @0.3: latency %s cycles, %.2f hops, %.4f flits/node/cycle\n\n",
		res.LatencyString(), res.AvgHops, res.Throughput)

	// A 2-D torus: wraparound halves the average distance but needs two
	// escape VCs split around the dateline for deadlock freedom.
	cfg = core.DefaultConfig()
	cfg.Torus = true
	cfg.EscapeVCs = 2
	cfg.Table = table.KindFull
	cfg.Pattern = traffic.Uniform
	cfg.Load = 0.3
	cfg.Warmup, cfg.Measure = 500, 6000
	resT, err := core.Run(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("16x16 torus, Duato routing with dateline escape VCs:\n")
	fmt.Printf("  uniform @0.3: latency %s cycles, %.2f hops (mesh was ~10.6)\n",
		resT.LatencyString(), resT.AvgHops)
}
