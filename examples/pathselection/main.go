// Pathselection compares the paper's five path-selection heuristics on a
// shared-memory-style non-uniform workload (transpose traffic), the
// scenario section 4 motivates: traffic-sensitive selection spreads load
// across the alternate minimal paths that static dimension-order
// preference leaves idle.
package main

import (
	"fmt"
	"log"

	"lapses/internal/core"
	"lapses/internal/selection"
	"lapses/internal/traffic"
)

func main() {
	fmt.Println("Path-selection heuristics on 16x16 mesh, transpose traffic (LA adaptive router)")
	fmt.Printf("%-12s", "load")
	for _, psh := range []selection.Kind{selection.StaticXY, selection.MinMux, selection.LFU, selection.LRU, selection.MaxCredit} {
		fmt.Printf(" %11s", psh)
	}
	fmt.Println()

	for _, load := range []float64{0.2, 0.3, 0.4} {
		fmt.Printf("%-12.1f", load)
		for _, psh := range []selection.Kind{selection.StaticXY, selection.MinMux, selection.LFU, selection.LRU, selection.MaxCredit} {
			cfg := core.DefaultConfig()
			cfg.Pattern = traffic.Transpose
			cfg.Load = load
			cfg.Selection = psh
			cfg.Warmup, cfg.Measure = 500, 8000
			res, err := core.Run(cfg)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf(" %11s", res.LatencyString())
		}
		fmt.Println()
	}
	fmt.Println("\nLower is better; the dynamic heuristics (LRU/LFU/MAX-CREDIT) pull ahead as load rises.")
}
