// Lookahead demonstrates the pipeline-stage saving of LA-PROUD over PROUD
// for the short messages typical of shared-memory systems (the paper's
// Table 3 scenario): the shorter the message, the larger the share of its
// latency spent in per-hop header processing, and the bigger the win from
// removing one pipeline stage.
package main

import (
	"fmt"
	"log"

	"lapses/internal/core"
	"lapses/internal/traffic"
)

func main() {
	fmt.Println("Look-ahead benefit vs message length (16x16 mesh, uniform traffic, load 0.2)")
	fmt.Printf("%-10s %14s %14s %10s\n", "flits", "PROUD (5-stg)", "LA-PROUD (4-stg)", "saving")

	for _, msgLen := range []int{5, 10, 20, 50} {
		run := func(lookAhead bool) float64 {
			cfg := core.DefaultConfig()
			cfg.LookAhead = lookAhead
			cfg.Pattern = traffic.Uniform
			cfg.Load = 0.2
			cfg.MsgLen = msgLen
			cfg.Warmup, cfg.Measure = 500, 8000
			res, err := core.Run(cfg)
			if err != nil {
				log.Fatal(err)
			}
			return res.AvgLatency
		}
		proud := run(false)
		la := run(true)
		fmt.Printf("%-10d %14.1f %14.1f %9.1f%%\n", msgLen, proud, la, 100*(proud-la)/proud)
	}
}
