// Quickstart: simulate the paper's 16x16 mesh with the full LAPSES router
// (look-ahead pipeline + LRU path selection + economical-storage tables)
// under uniform traffic, and print the latency/throughput point.
package main

import (
	"fmt"
	"log"

	"lapses/internal/core"
)

func main() {
	cfg := core.DefaultConfig() // Table 2 parameters, LAPSES router
	cfg.Load = 0.3              // 30% of bisection saturation
	cfg.Warmup, cfg.Measure = 500, 10000

	res, err := core.Run(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("16x16 mesh, LAPSES router, uniform traffic @ load %.1f\n", cfg.Load)
	fmt.Printf("  average latency : %s cycles (95%% CI +/- %.2f)\n", res.LatencyString(), res.CI95)
	fmt.Printf("  average hops    : %.2f\n", res.AvgHops)
	fmt.Printf("  throughput      : %.4f flits/node/cycle\n", res.Throughput)
	fmt.Printf("  delivered       : %d messages\n", res.Delivered)
}
