// Faults demonstrates degraded-topology simulation: the same 8x8 mesh
// loses progressively more links, and the adaptive LAPSES router (Duato +
// ES tables + LRU selection) is compared against deterministic routing
// recomputed over the damage. Adaptive routing barely notices the first
// failures — its path diversity absorbs them — while the deterministic
// function, forced into up*/down* detours, degrades immediately.
package main

import (
	"fmt"
	"log"

	"lapses/internal/core"
	"lapses/internal/fault"
	"lapses/internal/selection"
)

func main() {
	fmt.Println("Degraded 8x8 mesh, uniform traffic at load 0.3: latency by failed links")
	fmt.Printf("%-14s %-28s %12s %12s\n", "failed links", "plan", "adaptive", "deterministic")

	for _, n := range []int{0, 2, 4, 6} {
		base := core.DefaultConfig()
		base.Dims = []int{8, 8}
		base.Load = 0.3
		base.Warmup, base.Measure = 500, 8000

		var plan *fault.Plan
		if n > 0 {
			var err error
			// Seeded random damage; the generator only returns plans that
			// keep the live network connected.
			if plan, err = fault.Random(base.Mesh(), n, 0, 42); err != nil {
				log.Fatal(err)
			}
		}
		base.Faults = plan

		cells := make([]string, 0, 2)
		for _, alg := range []core.Alg{core.AlgDuato, core.AlgXY} {
			cfg := base
			cfg.Algorithm = alg
			if alg == core.AlgXY {
				cfg.Selection = selection.StaticXY
			}
			res, err := core.Run(cfg)
			if err != nil {
				log.Fatal(err)
			}
			cells = append(cells, res.LatencyString())
		}
		key := "-"
		if plan != nil {
			key = plan.Key()
		}
		if len(key) > 28 {
			key = key[:25] + "..."
		}
		fmt.Printf("%-14d %-28s %12s %12s\n", n, key, cells[0], cells[1])
	}
	fmt.Println("\n\"Sat.\" marks saturation; see cmd/lapses-experiments -exp resilience for the full study.")
}
