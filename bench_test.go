// Benchmarks regenerating every table and figure of the LAPSES paper's
// evaluation, plus microarchitecture and ablation benches. Each
// paper-experiment bench runs a scaled-down but otherwise faithful
// simulation per iteration and reports the measured average latency as a
// custom metric (cycles/msg), so `go test -bench` doubles as a compact
// results table. Full-resolution sweeps (all loads, paper sample sizes)
// are produced by cmd/lapses-experiments.
package lapses_test

import (
	"context"
	"fmt"
	"testing"

	"lapses/internal/core"
	"lapses/internal/experiments"
	"lapses/internal/routing"
	"lapses/internal/selection"
	"lapses/internal/sweep"
	"lapses/internal/table"
	"lapses/internal/topology"
	"lapses/internal/traffic"
)

// benchConfig is the shared scaled-down 16x16 configuration.
func benchConfig() core.Config {
	c := core.DefaultConfig()
	c.Selection = selection.StaticXY
	c.Warmup, c.Measure = 300, 3000
	return c
}

// runPoint executes one simulation per bench iteration and reports its
// average latency.
func runPoint(b *testing.B, c core.Config) {
	b.Helper()
	var last core.Result
	for i := 0; i < b.N; i++ {
		c.Seed = int64(i + 1)
		r, err := core.Run(c)
		if err != nil {
			b.Fatal(err)
		}
		last = r
	}
	if last.Saturated {
		b.ReportMetric(-1, "cycles/msg") // saturation marker
	} else {
		b.ReportMetric(last.AvgLatency, "cycles/msg")
	}
	b.ReportMetric(last.Throughput, "flits/node/cycle")
}

// BenchmarkFig5 regenerates Figure 5: the four router architectures
// (deterministic/adaptive x with/without look-ahead) per traffic pattern,
// at a representative pre-saturation load.
func BenchmarkFig5(b *testing.B) {
	loads := map[traffic.Kind]float64{
		traffic.Uniform:     0.5,
		traffic.Transpose:   0.3,
		traffic.BitReversal: 0.3,
		traffic.Shuffle:     0.3,
	}
	archs := []struct {
		name string
		la   bool
		alg  core.Alg
	}{
		{"NOLA-DET", false, core.AlgXY},
		{"NOLA-ADAPT", false, core.AlgDuato},
		{"LA-DET", true, core.AlgXY},
		{"LA-ADAPT", true, core.AlgDuato},
	}
	for _, pat := range []traffic.Kind{traffic.Uniform, traffic.Transpose, traffic.BitReversal, traffic.Shuffle} {
		for _, a := range archs {
			b.Run(fmt.Sprintf("%s/%s", pat, a.name), func(b *testing.B) {
				c := benchConfig()
				c.Pattern = pat
				c.Load = loads[pat]
				c.LookAhead = a.la
				c.Algorithm = a.alg
				runPoint(b, c)
			})
		}
	}
}

// BenchmarkTable3 regenerates Table 3: look-ahead benefit vs message
// length at uniform load 0.2.
func BenchmarkTable3(b *testing.B) {
	for _, msgLen := range []int{5, 10, 20, 50} {
		for _, la := range []bool{true, false} {
			name := fmt.Sprintf("len%d/LA=%v", msgLen, la)
			b.Run(name, func(b *testing.B) {
				c := benchConfig()
				c.Load = 0.2
				c.MsgLen = msgLen
				c.LookAhead = la
				runPoint(b, c)
			})
		}
	}
}

// BenchmarkFig6 regenerates Figure 6: the five path-selection heuristics
// per traffic pattern at medium-high load.
func BenchmarkFig6(b *testing.B) {
	loads := map[traffic.Kind]float64{
		traffic.Uniform:     0.5,
		traffic.Transpose:   0.4,
		traffic.BitReversal: 0.4,
		traffic.Shuffle:     0.4,
	}
	for _, pat := range []traffic.Kind{traffic.Uniform, traffic.Transpose, traffic.BitReversal, traffic.Shuffle} {
		for _, psh := range []selection.Kind{selection.StaticXY, selection.MinMux, selection.LFU, selection.LRU, selection.MaxCredit} {
			b.Run(fmt.Sprintf("%s/%s", pat, psh), func(b *testing.B) {
				c := benchConfig()
				c.Pattern = pat
				c.Load = loads[pat]
				c.Selection = psh
				runPoint(b, c)
			})
		}
	}
}

// BenchmarkTable4 regenerates Table 4: the table-storage schemes under
// transpose traffic where their differences are starkest.
func BenchmarkTable4(b *testing.B) {
	for _, tk := range []table.Kind{table.KindMetaBlock, table.KindMetaRow, table.KindFull, table.KindES} {
		b.Run(tk.String(), func(b *testing.B) {
			c := benchConfig()
			c.Pattern = traffic.Transpose
			c.Load = 0.2
			c.Table = tk
			runPoint(b, c)
		})
	}
}

// BenchmarkTable5 measures what Table 5 summarizes: the construction cost
// and lookup cost of each table organization (storage numbers are printed
// by cmd/lapses-experiments -exp table5).
func BenchmarkTable5(b *testing.B) {
	m := topology.NewMesh(16, 16)
	cls := routing.Class{NumVCs: 4, EscapeVCs: 1}
	alg := routing.NewDuato(m, cls)
	node := m.ID(topology.Coord{7, 7})

	b.Run("build/full", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			table.NewFull(m, alg, node)
		}
	})
	b.Run("build/es", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			table.NewES(m, alg, node)
		}
	})
	full := table.NewFull(m, alg, node)
	es := table.NewES(m, alg, node)
	meta := table.NewMeta(m, alg, cls, node, table.MapBlock)
	dsts := make([]topology.NodeID, 64)
	for i := range dsts {
		dsts[i] = topology.NodeID(i * 4)
	}
	for name, tbl := range map[string]table.Table{"full": full, "es": es, "meta-block": meta} {
		b.Run("lookup/"+name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				tbl.Lookup(dsts[i&63], 0)
			}
		})
		b.Run("lookahead/"+name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				tbl.LookupAt(topology.PortPlus(0), dsts[i&63], 0)
			}
		})
	}
}

// BenchmarkSweepParallelism runs a fixed 16-point grid through the sweep
// engine at increasing worker counts. Points are independent simulations,
// so ns/op should fall near-linearly with workers until GOMAXPROCS (or
// memory bandwidth) saturates — compare the workers=1 and workers=N lines.
func BenchmarkSweepParallelism(b *testing.B) {
	var grid []core.Config
	for _, pat := range []traffic.Kind{traffic.Uniform, traffic.Transpose} {
		for _, load := range []float64{0.1, 0.15, 0.2, 0.25, 0.3, 0.35, 0.1, 0.2} {
			c := core.DefaultConfig()
			c.Dims = []int{8, 8}
			c.Selection = selection.StaticXY
			c.Pattern = pat
			c.Load = load
			c.Warmup, c.Measure = 100, 1000
			c.Seed = 7
			grid = append(grid, c)
		}
	}
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				outs, err := sweep.Run(context.Background(), grid, sweep.Options{Workers: workers})
				if err != nil {
					b.Fatal(err)
				}
				for _, o := range outs {
					if o.Err != nil {
						b.Fatal(o.Err)
					}
				}
			}
			b.ReportMetric(float64(len(grid)), "points/op")
		})
	}
}

// BenchmarkSweepMemoCache measures the same grid with every point
// duplicated and a memo cache attached: the duplicates must cost lookups,
// not simulations.
func BenchmarkSweepMemoCache(b *testing.B) {
	var grid []core.Config
	for _, load := range []float64{0.1, 0.2, 0.3} {
		c := core.DefaultConfig()
		c.Dims = []int{8, 8}
		c.Selection = selection.StaticXY
		c.Load = load
		c.Warmup, c.Measure = 100, 1000
		c.Seed = 7
		grid = append(grid, c, c) // duplicated point
	}
	for i := 0; i < b.N; i++ {
		cache := sweep.NewCache()
		outs, err := sweep.Run(context.Background(), grid, sweep.Options{Cache: cache})
		if err != nil {
			b.Fatal(err)
		}
		for _, o := range outs {
			if o.Err != nil {
				b.Fatal(o.Err)
			}
		}
		if cache.Misses() != int64(len(grid)/2) {
			b.Fatalf("misses = %d want %d", cache.Misses(), len(grid)/2)
		}
	}
}

// BenchmarkSweepAutoFidelity compares the fixed and adaptive measurement
// tiers on the same 8-point grid at a default-tier-like budget: the
// adaptive variant truncates warmup by MSER-5 and stops each point once
// its latency CI converges, so its cycles/op (simulated cycles per grid
// pass) is the direct read on what the Auto tier saves.
func BenchmarkSweepAutoFidelity(b *testing.B) {
	mkGrid := func(auto bool) []core.Config {
		var grid []core.Config
		for _, load := range []float64{0.05, 0.1, 0.15, 0.2, 0.25, 0.3, 0.35, 0.4} {
			c := core.DefaultConfig()
			c.Dims = []int{8, 8}
			c.Selection = selection.StaticXY
			c.Load = load
			c.Warmup, c.Measure = 300, 6000
			c.Seed = 7
			if auto {
				c.Auto = &core.AutoMeasure{RelTol: 0.05}
			}
			grid = append(grid, c)
		}
		return grid
	}
	for _, auto := range []bool{false, true} {
		name := "fixed"
		if auto {
			name = "auto"
		}
		grid := mkGrid(auto)
		b.Run(name, func(b *testing.B) {
			var cycles, delivered int64
			for i := 0; i < b.N; i++ {
				outs, err := sweep.Run(context.Background(), grid, sweep.Options{})
				if err != nil {
					b.Fatal(err)
				}
				for _, o := range outs {
					if o.Err != nil {
						b.Fatal(o.Err)
					}
					cycles += o.Result.TotalCycles
					delivered += o.Result.Delivered
				}
			}
			b.ReportMetric(float64(cycles)/float64(b.N), "cycles/op")
			b.ReportMetric(float64(delivered)/float64(b.N), "msgs/op")
		})
	}
}

// BenchmarkBisect measures the saturation search on the 8x8 mesh: one
// full bracket-plus-bisection run per iteration against a fresh cache
// (every probe really simulates), reporting the probes and simulated
// cycles one search costs — compare against the dense-grid points the
// BisectResult reports to see the reduction.
func BenchmarkBisect(b *testing.B) {
	base := core.DefaultConfig()
	base.Dims = []int{8, 8}
	base.Selection = selection.StaticXY
	base.Warmup, base.Measure = 300, 6000
	base.Seed = 7
	spec := experiments.SaturationSpec(base, 0.1, 1.2, 0.04)
	var probes, cycles int64
	for i := 0; i < b.N; i++ {
		res, err := sweep.Bisect(context.Background(), spec, sweep.Options{Cache: sweep.NewCache()})
		if err != nil {
			b.Fatal(err)
		}
		if !res.Converged {
			b.Fatalf("search did not converge: %s", res)
		}
		probes += int64(res.Probes)
		cycles += res.SimulatedCycles
	}
	b.ReportMetric(float64(probes)/float64(b.N), "probes/op")
	b.ReportMetric(float64(cycles)/float64(b.N), "cycles/op")
}

// BenchmarkSimulatorThroughput measures raw simulator speed: router-cycles
// per second at a loaded steady state, the number that bounds every sweep
// above.
func BenchmarkSimulatorThroughput(b *testing.B) {
	benchSimulator(b, 0.5)
}

// BenchmarkSimulatorLowLoad measures the same simulation at load 0.05,
// the low end of every latency curve, where the network is nearly empty
// and the active-set scheduler's idle-skip dominates.
func BenchmarkSimulatorLowLoad(b *testing.B) {
	benchSimulator(b, 0.05)
}

// BenchmarkSimulatorNearIdle measures the regime idle-cycle fast-forward
// targets: a load so low the network is globally empty most cycles, where
// Step jumps straight to the next injection instead of ticking silence.
// Compare its cycles/sec against BenchmarkSimulatorLowLoad (load 0.05,
// where ~9 messages are always in flight and there is little to skip).
func BenchmarkSimulatorNearIdle(b *testing.B) {
	benchSimulator(b, 0.005)
}

// BenchmarkSimulatorSharded measures deterministic sharded stepping on a
// 32x32 mesh at a loaded steady state: the same simulation partitioned
// into row bands stepped by worker goroutines, bit-identical to shards=1.
// On a multi-core host the shards=4 line is the single-run wall-clock
// lever; on one core it prices the two-phase barrier instead.
func BenchmarkSimulatorSharded(b *testing.B) {
	for _, shards := range []int{1, 4} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			c := benchConfig()
			c.Dims = []int{32, 32}
			c.Load = 0.5
			c.Warmup, c.Measure = 100, 1000
			c.Shards = shards
			b.ReportAllocs()
			var cycles int64
			for i := 0; i < b.N; i++ {
				r, err := core.Run(c)
				if err != nil {
					b.Fatal(err)
				}
				cycles += r.TotalCycles
			}
			b.ReportMetric(float64(cycles)/b.Elapsed().Seconds(), "cycles/sec")
		})
	}
}

// benchSimulator measures the cost of one sweep point in a warm process,
// the unit every experiment grid is built from. The seed is fixed, as it
// is across the load axis of a real sweep.
func benchSimulator(b *testing.B, load float64) {
	b.Helper()
	c := benchConfig()
	c.Load = load
	c.Warmup, c.Measure = 100, 1000
	b.ReportAllocs()
	var cycles int64
	for i := 0; i < b.N; i++ {
		r, err := core.Run(c)
		if err != nil {
			b.Fatal(err)
		}
		cycles += r.Cycles
	}
	b.ReportMetric(float64(cycles)/b.Elapsed().Seconds(), "cycles/sec")
}

// Ablation benches: the design choices DESIGN.md calls out.

// BenchmarkAblationVCs varies the VC count (the paper fixes 4; 2 is
// Duato's minimum with one escape channel).
func BenchmarkAblationVCs(b *testing.B) {
	for _, vcs := range []int{2, 4, 8} {
		b.Run(fmt.Sprintf("vcs=%d", vcs), func(b *testing.B) {
			c := benchConfig()
			c.VCs = vcs
			c.Pattern = traffic.Transpose
			c.Load = 0.3
			runPoint(b, c)
		})
	}
}

// BenchmarkAblationEscape varies the escape-class size: more escape VCs
// means fewer adaptive ones.
func BenchmarkAblationEscape(b *testing.B) {
	for _, esc := range []int{1, 2} {
		b.Run(fmt.Sprintf("escape=%d", esc), func(b *testing.B) {
			c := benchConfig()
			c.EscapeVCs = esc
			c.Pattern = traffic.Transpose
			c.Load = 0.3
			runPoint(b, c)
		})
	}
}

// BenchmarkAblationBufDepth varies input buffer depth around the paper's
// 20 flits.
func BenchmarkAblationBufDepth(b *testing.B) {
	for _, depth := range []int{5, 20, 40} {
		b.Run(fmt.Sprintf("buf=%d", depth), func(b *testing.B) {
			c := benchConfig()
			c.BufDepth = depth
			c.Load = 0.5
			runPoint(b, c)
		})
	}
}

// BenchmarkAblationLookAheadByPattern isolates the look-ahead stage saving
// across patterns at low load, where it dominates.
func BenchmarkAblationLookAheadByPattern(b *testing.B) {
	for _, pat := range []traffic.Kind{traffic.Uniform, traffic.Shuffle} {
		for _, la := range []bool{false, true} {
			b.Run(fmt.Sprintf("%s/LA=%v", pat, la), func(b *testing.B) {
				c := benchConfig()
				c.Pattern = pat
				c.Load = 0.1
				c.LookAhead = la
				runPoint(b, c)
			})
		}
	}
}

// BenchmarkAblationSwitching compares wormhole (the paper's mode) with
// virtual cut-through at medium load.
func BenchmarkAblationSwitching(b *testing.B) {
	for _, vct := range []bool{false, true} {
		name := "wormhole"
		if vct {
			name = "cut-through"
		}
		b.Run(name, func(b *testing.B) {
			c := benchConfig()
			c.CutThrough = vct
			c.Load = 0.5
			runPoint(b, c)
		})
	}
}

// BenchmarkStencilTrace measures the trace-driven application workload
// (examples/stencil) on both pipelines.
func BenchmarkStencilTrace(b *testing.B) {
	for _, la := range []bool{false, true} {
		name := "PROUD"
		if la {
			name = "LA-PROUD"
		}
		b.Run(name, func(b *testing.B) {
			var last core.Result
			for i := 0; i < b.N; i++ {
				c := core.DefaultConfig()
				c.LookAhead = la
				tr := traffic.StencilTrace(c.Mesh(), 20, 120, 8)
				c.Trace = tr
				c.Warmup, c.Measure = tr.Total()/10, tr.Total()-tr.Total()/10
				c.Seed = int64(i + 1)
				r, err := core.Run(c)
				if err != nil {
					b.Fatal(err)
				}
				last = r
			}
			b.ReportMetric(last.AvgLatency, "cycles/msg")
		})
	}
}
