module lapses

go 1.24
