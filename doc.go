// Package lapses reproduces "LAPSES: A Recipe for High Performance
// Adaptive Router Design" (Vaidya, Sivasubramaniam, Das; HPCA 1999) as a
// Go library: a cycle-level wormhole-network simulator with the paper's
// PROUD/LA-PROUD pipelined router models, Duato's fully adaptive routing,
// the LRU/LFU/MAX-CREDIT path-selection heuristics, and the full-table /
// meta-table / economical-storage / interval routing-table organizations.
//
// The public entry point is internal/core (Config, Run); experiment grids
// execute through internal/sweep, a deterministic concurrent grid runner
// with ordered results and a config-keyed memo cache (see README.md's
// "The sweep engine"). See README.md for a tour, DESIGN.md for the
// architecture, and EXPERIMENTS.md for the paper-versus-measured
// comparison of every table and figure. The benchmarks in bench_test.go
// regenerate each experiment via "go test -bench";
// BenchmarkSweepParallelism measures sweep scaling across worker counts.
//
// Beyond the paper's healthy-network evaluation, internal/fault models
// degraded topologies: deterministic plans of failed links and routers,
// threaded through routing (up*/down* escape over the live graph, Duato
// adaptivity on live minimal ports), the table organizations (exception
// overlays on ES and interval tables), and the fabric (dead wiring, inert
// NIs). The resilience experiment (cmd/lapses-experiments -exp
// resilience) measures saturation throughput and latency versus the
// number of failed links, showing the adaptive recipe sustaining 1.5-2.3x
// deterministic routing's throughput at four or more failures — the
// degraded regime adaptive routing is designed for, which the original
// evaluation never exercises.
//
// Measurement is either fixed (the paper's warmup/measure message
// counts) or adaptive (core.Config.Auto): internal/stats supplies
// streaming moments, MSER-5 warmup truncation and batch-means confidence
// intervals, and an Auto run measures every delivered message from cycle
// zero, truncates the initialization transient statistically, and stops
// as soon as the latency CI half-width falls below a relative tolerance
// at two consecutive agreeing checks — bounded by floor and ceiling
// budgets. Result.MeasuredCycles reports the truncated window the
// estimate covers (for fixed runs it equals Result.Cycles),
// Result.Converged whether the CI target ended the run, and
// Result.LatencyCI the half-width under whichever methodology ran.
// Result.SkippedCycles — the idle cycles fast-forward jumped over — is
// independent of MeasuredCycles: a skipped cycle inside the measurement
// window is still simulated, measured time, because the jump happens
// only when provably nothing is in flight. Adaptive runs are
// deterministic (same config, same bits, any shard count) but not
// bit-comparable to fixed runs, so the goldens and every
// bit-equivalence test stay on the fixed tiers; Auto is opt-in per
// config, or per experiment via -fidelity auto.
//
// Saturation points are located by bisection instead of dense load
// grids: sweep.Bisect brackets the saturation load and narrows it by
// parallel k-section, with probes classified by acceptance (delivered
// throughput versus offered; sweep.OfferedFracSaturated) under
// load-scaled cycle budgets built by experiments.SaturationSpec. The
// search reuses the sweep memo cache and worker budget, is
// deterministic for any worker count, and costs a logarithmic number of
// probes — measured >= 2x fewer simulated cycles than the dense-grid
// reference (sweep.SaturationScan), pinned by TestBisectCycleReduction.
// The resilience and scaling experiments and the saturation claims
// tests all report saturation through it.
//
// A single run parallelizes through deterministic sharded stepping
// (core.Config.Shards): the mesh splits into contiguous row bands, each
// stepped by its own worker, with cross-shard flits and credits carried
// through per-shard mailboxes drained at a two-phase cycle barrier.
// Because every cross-shard effect is a future event (at least two cycles
// out) and all order-sensitive work — message ID assignment, statistics
// recording — happens serially at the barrier in ascending node order,
// results are bit-identical for every shard count (pinned by the golden
// tests at shards 1, 2 and 4, healthy and faulted). On top of the sharded
// kernel, idle-cycle fast-forward jumps the clock straight to the next NI
// wake whenever the network is globally empty (no buffered flits, no
// queued messages, no events in flight), multiplying simulated cycles per
// second in near-idle regimes — drain tails, sparse traces, very low
// loads — while remaining observationally neutral. The scaling experiment
// (cmd/lapses-experiments -exp scaling) drives both mechanisms end to end
// from 8x8 to 32x32 meshes; internal/sweep budgets its grid workers
// against per-run shard counts so sweeps never oversubscribe GOMAXPROCS.
//
// Orthogonal to sharding, core.Config.EventMode selects the event-driven
// kernel: whole-message transfers collapse into single "worm" events
// (one event, one batched credit, one deferred VC release per
// uncontended hop), with any hop the router cannot absorb in O(1)
// unpacking back onto the unchanged cycle-accurate path. Event mode is
// observationally equivalent — latency within the adaptive controller's
// CI and throughput within fractions of a percent of the cycle kernel,
// several times the cycles/sec — but not bit-identical and not
// shard-count-invariant, so Config.Key() marks it (",ev") and the
// goldens and bit-equivalence suites stay on the cycle kernel. Use
// -events for sweeps and experiments; use the default cycle kernel
// whenever bits matter. See README.md "Execution modes".
//
// internal/serve turns the sweep engine into a fault-tolerant service
// (cmd/lapses-serve): grid jobs arrive over HTTP/JSON, execute through
// sweep.Run, and every completed point persists to a crash-safe,
// content-addressed store keyed by Config.Key — atomic temp-file+rename
// writes, per-entry checksums, and a startup recovery scan that
// quarantines corrupt entries rather than serving them, so a kill -9
// loses only in-flight points and resubmitted jobs resume from disk.
// Points are panic-isolated, transient failures retry under a jittered
// backoff budget, the job queue applies 429 backpressure, and SIGTERM
// drains in-flight points before exit. serve.Client.Run satisfies
// sweep.RunFunc, which experiments.Runner.Exec and sweep.Options.Exec
// accept — lapses-experiments -server routes every grid and
// saturation-search probe through a server byte-identically to the
// in-process path. See README.md "Service mode".
package lapses
