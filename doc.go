// Package lapses reproduces "LAPSES: A Recipe for High Performance
// Adaptive Router Design" (Vaidya, Sivasubramaniam, Das; HPCA 1999) as a
// Go library: a cycle-level wormhole-network simulator with the paper's
// PROUD/LA-PROUD pipelined router models, Duato's fully adaptive routing,
// the LRU/LFU/MAX-CREDIT path-selection heuristics, and the full-table /
// meta-table / economical-storage / interval routing-table organizations.
//
// The public entry point is internal/core (Config, Run); experiment grids
// execute through internal/sweep, a deterministic concurrent grid runner
// with ordered results and a config-keyed memo cache (see README.md's
// "The sweep engine"). See README.md for a tour, DESIGN.md for the
// architecture, and EXPERIMENTS.md for the paper-versus-measured
// comparison of every table and figure. The benchmarks in bench_test.go
// regenerate each experiment via "go test -bench";
// BenchmarkSweepParallelism measures sweep scaling across worker counts.
//
// Beyond the paper's healthy-network evaluation, internal/fault models
// degraded topologies: deterministic plans of failed links and routers,
// threaded through routing (up*/down* escape over the live graph, Duato
// adaptivity on live minimal ports), the table organizations (exception
// overlays on ES and interval tables), and the fabric (dead wiring, inert
// NIs). The resilience experiment (cmd/lapses-experiments -exp
// resilience) measures saturation throughput and latency versus the
// number of failed links, showing the adaptive recipe sustaining 1.5-2.3x
// deterministic routing's throughput at four or more failures — the
// degraded regime adaptive routing is designed for, which the original
// evaluation never exercises.
package lapses
